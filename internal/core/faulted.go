package core

import (
	"errors"
	"fmt"
	"sort"

	"wrht/internal/fault"
	"wrht/internal/rwa"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// Degraded-mode WRHT construction: BuildWRHTMasked builds the same
// hierarchical schedule as BuildWRHT but under a fault mask, at three
// levels of the construction.
//
//   - Dead wavelengths shrink the effective budget: the schedule is
//     built for w_eff = |alive wavelengths| (which resizes the Lemma-1
//     group size m = 2·w_eff+1 and the all-to-all feasibility test),
//     then every wavelength index is remapped onto the alive list. The
//     remap relabels circuits without changing their count or arcs, so
//     completion time depends only on how many wavelengths died, not
//     which.
//   - Failed nodes are excluded through the segment-schedule machinery:
//     the alive positions form an ascending participant list, the line
//     construction (BuildWRHTLine, no wraparound, line all-to-all)
//     builds over them, and partition re-elects representatives from
//     the surviving members of each group.
//   - Cut segments and failed transceivers are repaired per transfer: a
//     circuit that hits one is rerouted over the opposite-direction
//     fiber on the first wavelength free under a mask-seeded rwa.Index,
//     so the reroute conflicts neither with the step's other circuits
//     nor with dead wavelengths or cuts on the detour. When the detour
//     cannot fit alongside the step's surviving circuits it spills into
//     an overflow step inserted right after — safe for gather and
//     broadcast steps, whose senders are never receivers within the
//     step, so a deferred transfer still reads the value it would have
//     sent. All-to-all steps cannot be split that way (every
//     representative both sends and receives), so an unrepairable
//     all-to-all triggers a rebuild with the exchange disabled
//     (gather to a single root instead). If even an otherwise-empty
//     overflow step cannot host the detour, the build fails — there is
//     no feasible degraded schedule.
//
// An empty (or nil) mask short-circuits to BuildWRHT, so the zero-fault
// path is bit-identical to the healthy construction.

// BuildWRHTMasked constructs the WRHT all-reduce schedule under a fault
// mask. The schedule's ring keeps the full cfg.N node-id space; failed
// nodes simply neither send nor receive. Degraded-loss MRRs do not act
// here — fold them into cfg.MaxGroupSize via fault.Mask.MaxGroupSize.
func BuildWRHTMasked(cfg Config, m *fault.Mask) (*Schedule, error) {
	if m.Empty() {
		return BuildWRHT(cfg)
	}
	if m.N() != cfg.N {
		return nil, fmt.Errorf("core: fault mask is for %d nodes, config for %d", m.N(), cfg.N)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	alive := m.AliveNodes()
	if len(alive) == 0 {
		return nil, fmt.Errorf("core: degraded wrht: every node failed")
	}
	aliveW := m.AliveWavelengths(cfg.Wavelengths)
	if len(aliveW) == 0 {
		return nil, fmt.Errorf("core: degraded wrht: every wavelength dead")
	}

	dcfg := cfg
	dcfg.Wavelengths = len(aliveW)
	var inner *Schedule
	var err error
	var mapID func(int) int
	if len(alive) == cfg.N {
		// All nodes alive: the full ring construction at the shrunken
		// budget, node ids already final.
		inner, err = BuildWRHT(dcfg)
	} else {
		// Failed nodes: line construction over the alive participants
		// (wavelength reuse never spans a failed node's position, which
		// is conservative but keeps every circuit wrap-free), remapped
		// onto the surviving ring positions.
		dcfg.N = len(alive)
		inner, err = BuildWRHTLine(dcfg)
		mapID = func(i int) int { return alive[i] }
	}
	if err != nil {
		return nil, fmt.Errorf("core: degraded wrht: %w", err)
	}

	s := &Schedule{Algorithm: "wrht-degraded", Ring: topo.NewRing(cfg.N)}
	identityW := len(aliveW) == cfg.Wavelengths
	for _, st := range inner.Steps {
		if mapID != nil {
			st = remapStep(st, mapID)
		} else {
			st = Step{Phase: st.Phase, Transfers: append([]Transfer(nil), st.Transfers...)}
		}
		if !identityW {
			for i := range st.Transfers {
				w := st.Transfers[i].Wavelength
				if w >= len(aliveW) {
					return nil, fmt.Errorf("core: degraded wrht: assignment uses wavelength %d beyond the %d alive (random-fit over budget?)", w, len(aliveW))
				}
				st.Transfers[i].Wavelength = aliveW[w]
			}
		}
		s.Steps = append(s.Steps, st)
	}
	if err := repairMasked(s, cfg.Wavelengths, m); err != nil {
		if err == errAllToAllUnrepairable && !cfg.DisableAllToAll {
			retry := cfg
			retry.DisableAllToAll = true
			return BuildWRHTMasked(retry, m)
		}
		return nil, err
	}
	return s, nil
}

// errAllToAllUnrepairable reports an all-to-all step whose detours do
// not fit alongside its surviving circuits. BuildWRHTMasked reacts by
// rebuilding with the exchange disabled.
var errAllToAllUnrepairable = errors.New("core: degraded wrht: all-to-all step cannot be repaired in place")

// atom is a unit of spilled repair work: an ordered chain of transfers
// that must land in strictly increasing overflow steps (one leg for a
// direction flip or a re-sourced broadcast, two for a relayed gather
// contribution — the copy to the helper, then the helper's forward).
type atom struct {
	legs []Transfer
}

// repairer carries the state of one repairMasked run.
type repairer struct {
	s      *Schedule
	budget int
	m      *fault.Mask
	ix     *rwa.Index // placement index (seeds + current step's circuits)
	sx     *rwa.Index // seeds-only probe for "could this ever fit" checks
	// after[si] is the set of nodes with a reduce or all-to-all role in
	// any step strictly after si. A relay helper must not be in it: the
	// relay clobbers the helper's vector, which is safe only for nodes
	// whose remaining role is to receive the broadcast (a whole-vector
	// overwrite).
	after []map[int]bool
	// holders is the set of nodes known to hold the fully reduced
	// vector once the broadcast phase is underway — legitimate
	// replacement sources for a broadcast copy whose own source cannot
	// reach the destination.
	holders map[int]bool
	// usedHelpers are relay scratch nodes already claimed this run;
	// each holds borrowed data in flight, so it cannot be lent twice.
	usedHelpers map[int]bool
}

// repairMasked reroutes every transfer that hits a cut segment or a
// failed transceiver. Three escalating repairs are tried per broken
// transfer:
//
//  1. direction flip within the step, on the first wavelength free
//     alongside the step's surviving circuits;
//  2. direction flip spilled into an overflow step inserted after it;
//  3. when both fibers between the endpoints are unusable: a broadcast
//     copy is re-sourced from another holder of the reduced vector,
//     and a gather contribution is relayed through a scratch helper
//     (copy to the helper, then the helper forwards — two overflow
//     steps).
//
// All placement happens under a mask-seeded occupancy index, so repairs
// conflict neither with each other nor with dead wavelengths or cuts.
// Steps with no hits are left untouched, so their assignments stay
// bit-identical to the masked construction.
func repairMasked(s *Schedule, budget int, m *fault.Mask) error {
	anyBroken := false
	for _, st := range s.Steps {
		for _, tr := range st.Transfers {
			if m.TransferErr(s.Ring, tr.Src, tr.Dst, tr.Dir, tr.Wavelength) != nil {
				anyBroken = true
				break
			}
		}
	}
	if !anyBroken {
		return nil
	}
	rp := &repairer{
		s: s, budget: budget, m: m,
		ix:          rwa.NewIndex(s.Ring),
		sx:          rwa.NewIndex(s.Ring),
		holders:     map[int]bool{},
		usedHelpers: map[int]bool{},
	}
	m.Seed(rp.ix, budget)
	m.Seed(rp.sx, budget)
	rp.after = make([]map[int]bool, len(s.Steps)+1)
	rp.after[len(s.Steps)] = map[int]bool{}
	for si := len(s.Steps) - 1; si >= 0; si-- {
		set := map[int]bool{}
		for k := range rp.after[si+1] {
			set[k] = true
		}
		if s.Steps[si].Phase != PhaseBroadcast {
			for _, tr := range s.Steps[si].Transfers {
				set[tr.Src], set[tr.Dst] = true, true
			}
		}
		rp.after[si] = set
	}

	var out []Step
	for si := range s.Steps {
		steps, err := rp.repairStep(si)
		if err != nil {
			return err
		}
		out = append(out, steps...)
	}
	s.Steps = out
	return nil
}

// feasible reports a direction in which src can reach dst under the
// mask with at least one in-budget wavelength free of seeds (dead
// wavelengths, cuts). Shortest direction is preferred.
func (rp *repairer) feasible(src, dst int) (topo.Direction, bool) {
	d0, _ := rp.s.Ring.ShortestDir(src, dst)
	for _, dir := range [2]topo.Direction{d0, d0.Opposite()} {
		if rp.m.PathErr(src, dst, dir) != nil {
			continue
		}
		rp.sx.Reset()
		if rp.sx.FirstFree(dir, rp.s.Ring.ArcOf(src, dst, dir)) < rp.budget {
			return dir, true
		}
	}
	return topo.CW, false
}

// repairStep repairs the si-th original step, returning it together
// with any overflow steps its spilled transfers required.
func (rp *repairer) repairStep(si int) ([]Step, error) {
	s, m := rp.s, rp.m
	st := s.Steps[si]
	if st.Phase == PhaseBroadcast {
		// Whoever sends the reduced vector holds it.
		for _, tr := range st.Transfers {
			rp.holders[tr.Src] = true
		}
	}
	var broken []int
	for i, tr := range st.Transfers {
		if m.TransferErr(s.Ring, tr.Src, tr.Dst, tr.Dir, tr.Wavelength) != nil {
			broken = append(broken, i)
		}
	}
	defer func() {
		if st.Phase == PhaseBroadcast {
			for _, tr := range st.Transfers {
				rp.holders[tr.Dst] = true
			}
		}
	}()
	if len(broken) == 0 {
		return []Step{st}, nil
	}
	rp.ix.Reset()
	// Occupy the healthy circuits first so a reroute cannot collide
	// with a later transfer of the same step.
	next := broken
	for i, tr := range st.Transfers {
		if len(next) > 0 && next[0] == i {
			next = next[1:]
			continue
		}
		rp.ix.Occupy(tr.Dir, s.Ring.ArcOf(tr.Src, tr.Dst, tr.Dir), tr.Wavelength)
	}
	// Pass 1: in-step direction flips.
	var spilled []int
	for _, i := range broken {
		tr := &st.Transfers[i]
		dir := tr.Dir.Opposite()
		arc := s.Ring.ArcOf(tr.Src, tr.Dst, dir)
		if m.PathErr(tr.Src, tr.Dst, dir) == nil {
			if w := rp.ix.FirstFree(dir, arc); w < rp.budget {
				tr.Dir, tr.Wavelength = dir, w
				rp.ix.Occupy(dir, arc, w)
				continue
			}
		}
		spilled = append(spilled, i)
	}
	if len(spilled) == 0 {
		return []Step{st}, nil
	}
	if st.Phase == PhaseAllToAll {
		return nil, errAllToAllUnrepairable
	}
	// Pass 2: plan an atom for every spilled transfer. Sources of
	// spilled transfers send in an overflow step, so their state must
	// not be borrowed as relay scratch before then.
	spilledSrc := map[int]bool{}
	for _, i := range spilled {
		spilledSrc[st.Transfers[i].Src] = true
	}
	var atoms []atom
	dropped := map[int]bool{}
	for _, i := range spilled {
		a, err := rp.planAtom(si, st, st.Transfers[i], spilledSrc)
		if err != nil {
			return nil, err
		}
		atoms = append(atoms, a)
		dropped[i] = true
	}
	kept := st.Transfers[:0:0]
	for i, tr := range st.Transfers {
		if !dropped[i] {
			kept = append(kept, tr)
		}
	}
	st.Transfers = kept
	out := []Step{st}
	// Pass 3: place atom legs into overflow steps, preserving leg order
	// across steps (a relay's forward runs strictly after its copy).
	for len(atoms) > 0 {
		rp.ix.Reset()
		ov := Step{Phase: st.Phase}
		var rest []atom
		for _, a := range atoms {
			tr := a.legs[0]
			arc := s.Ring.ArcOf(tr.Src, tr.Dst, tr.Dir)
			if w := rp.ix.FirstFree(tr.Dir, arc); w < rp.budget {
				tr.Wavelength = w
				rp.ix.Occupy(tr.Dir, arc, w)
				ov.Transfers = append(ov.Transfers, tr)
				if st.Phase == PhaseBroadcast {
					rp.holders[tr.Dst] = true
				}
				a.legs = a.legs[1:]
			}
			if len(a.legs) > 0 {
				rest = append(rest, a)
			}
		}
		if len(ov.Transfers) == 0 {
			return nil, fmt.Errorf("core: degraded wrht: step %d: overflow placement stalled with %d repairs pending", si, len(atoms))
		}
		out = append(out, ov)
		atoms = rest
	}
	return out, nil
}

// planAtom devises the overflow repair for one spilled transfer: a
// plain direction flip when the opposite fiber can ever host it, a
// re-sourced copy for broadcast payloads, or a two-leg helper relay for
// gather contributions.
func (rp *repairer) planAtom(si int, st Step, tr Transfer, spilledSrc map[int]bool) (atom, error) {
	s, m := rp.s, rp.m
	if dir := tr.Dir.Opposite(); m.PathErr(tr.Src, tr.Dst, dir) == nil {
		rp.sx.Reset()
		if rp.sx.FirstFree(dir, s.Ring.ArcOf(tr.Src, tr.Dst, dir)) < rp.budget {
			f := tr
			f.Dir = dir
			return atom{legs: []Transfer{f}}, nil
		}
	}
	if tr.Op == tensor.OpCopy {
		// Broadcast: any node already holding the reduced vector can
		// stand in as the source. Prefer the closest.
		for _, h := range rp.holdersByDist(tr.Dst) {
			if h == tr.Dst || !m.NodeOK(h) {
				continue
			}
			if dir, ok := rp.feasible(h, tr.Dst); ok {
				f := tr
				f.Src, f.Dir = h, dir
				return atom{legs: []Transfer{f}}, nil
			}
		}
		return atom{}, fmt.Errorf("core: degraded wrht: step %d transfer %v: no holder of the reduced vector can reach the destination — no feasible degraded schedule", si, tr)
	}
	// Gather: relay through a scratch helper. The helper's vector is
	// overwritten, so it must be a node whose only remaining role is to
	// receive the broadcast; current-step receivers (representatives
	// accumulating sums) and spilled senders (whose payload is still in
	// their vector) are off limits.
	excluded := map[int]bool{}
	for k := range rp.after[si+1] {
		excluded[k] = true
	}
	for k := range rp.usedHelpers {
		excluded[k] = true
	}
	for k := range spilledSrc {
		excluded[k] = true
	}
	for _, t := range st.Transfers {
		excluded[t.Dst] = true
	}
	for h := 0; h < s.Ring.N; h++ {
		if h == tr.Src || h == tr.Dst || excluded[h] || !m.NodeOK(h) {
			continue
		}
		dirA, okA := rp.feasible(tr.Src, h)
		dirB, okB := rp.feasible(h, tr.Dst)
		if !okA || !okB {
			continue
		}
		rp.usedHelpers[h] = true
		copyLeg := Transfer{Src: tr.Src, Dst: h, Chunk: tr.Chunk, Op: tensor.OpCopy, Dir: dirA}
		fwdLeg := Transfer{Src: h, Dst: tr.Dst, Chunk: tr.Chunk, Op: tr.Op, Dir: dirB}
		return atom{legs: []Transfer{copyLeg, fwdLeg}}, nil
	}
	return atom{}, fmt.Errorf("core: degraded wrht: step %d transfer %v: no relay helper can bridge the endpoints — no feasible degraded schedule", si, tr)
}

// holdersByDist lists the current holders of the reduced vector sorted
// by ring distance to dst (ties by node id, so the order is
// deterministic).
func (rp *repairer) holdersByDist(dst int) []int {
	hs := make([]int, 0, len(rp.holders))
	for h := range rp.holders {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool {
		_, di := rp.s.Ring.ShortestDir(hs[i], dst)
		_, dj := rp.s.Ring.ShortestDir(hs[j], dst)
		if di != dj {
			return di < dj
		}
		return hs[i] < hs[j]
	})
	return hs
}
