package core

import (
	"fmt"
	"testing"

	"wrht/internal/rwa"
)

// BenchmarkBuildWRHT constructs the full explicit WRHT schedule at the
// paper's wavelength budget (w=64, Lemma-1 group size) for large rings.
// The random-fit variants route the final exchange through rwa.Assign,
// so schedule construction cost tracks the RWA layer directly.
func BenchmarkBuildWRHT(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		for _, strat := range []rwa.Strategy{rwa.FirstFit, rwa.RandomFit} {
			cfg := Config{N: n, Wavelengths: 64, Strategy: strat, Seed: 1}
			b.Run(fmt.Sprintf("%v/N%d", strat, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := BuildWRHT(cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBuildWRHTStream drives the streamed pipeline end to end —
// StreamWRHT into a StepValidator over the delta occupancy index, the
// schedule never materialized — at sizes up to the million-node point
// the materialized path cannot reach comfortably. ReportAllocs makes
// allocation growth across sizes visible: the per-op totals track the
// widest single step, not the schedule.
func BenchmarkBuildWRHTStream(b *testing.B) {
	for _, n := range []int{16384, 65536, 1 << 20} {
		cfg := Config{N: n, Wavelengths: 64}
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				src, err := StreamWRHT(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := ValidateSource(src, nil, cfg.Wavelengths); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildWRHTValidate measures full-schedule conflict validation
// — every transfer of every step checked through the bitset occupancy
// index — which before this index was quadratic in per-step transfers.
func BenchmarkBuildWRHTValidate(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		s, err := BuildWRHT(Config{N: n, Wavelengths: 64})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := s.Validate(64); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
