package wrht

import (
	"wrht/internal/fault"
	"wrht/internal/topo"
)

// Fault-injection facade (see internal/fault for the full model): a
// FaultMask aggregates failed nodes, failed per-direction transceivers,
// dead wavelengths, cut waveguide segments and degraded-loss MRRs, and
// plugs into schedule construction through Build's WithFaults option.
//
//	mask := wrht.NewFaultMask(64).
//	        KillWavelength(3).
//	        FailNode(17).
//	        CutSegment(wrht.CW, 40)
//	s, err := wrht.Build(wrht.KindWRHT, 64, wrht.WithWavelengths(8), wrht.WithFaults(mask))
type (
	// FaultMask is the aggregate fault state of one n-node ring.
	FaultMask = fault.Mask
	// FaultSpec samples reproducible random masks from a seed.
	FaultSpec = fault.Spec
	// Direction is a fiber propagation direction (CW or CCW).
	Direction = topo.Direction
)

// Fiber directions for FaultMask mutators.
const (
	CW  = topo.CW
	CCW = topo.CCW
)

// NewFaultMask returns an empty (healthy) mask for an n-node ring.
func NewFaultMask(n int) *FaultMask { return fault.NewMask(n) }

// SampleFaults draws a deterministic random mask for an n-node ring
// from the spec (equivalent to sp.Sample(n)).
func SampleFaults(sp FaultSpec, n int) *FaultMask { return sp.Sample(n) }
