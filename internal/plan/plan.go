// Package plan chooses how to execute the final all-to-all phase of a
// WRHT schedule. core.PhasePlans enumerates the feasible shapes — the
// one-shot exchange, k-round reconfigured gather trees, and hybrid
// splits that carry the short-arc traffic one-shot and spill the rest
// into an extra round — and this package prices every candidate on the
// actual fabric and picks the argmin for the payload at hand.
//
// The pricing deliberately mirrors fabric.Engine's accumulation
// statement for statement: each step is charged Fabric.StepCost, and in
// overlap mode a step whose circuits are rwa-disjoint from its
// predecessor's hides min(setup, previous transmission). A plan's
// Predicted time therefore equals the engine's simulated time for the
// same steps exactly, which the cross-check gate (wrhtsim plan -check,
// exp.PlanSweep) asserts over the (r, w, a) grid.
//
// A Planner reuses one PhaseBuilder, one rwa probe and one candidate
// slice across calls, so the steady state of repeated planning
// allocates nothing (pinned by TestPlannerSteadyStateAllocs).
package plan

import (
	"fmt"
	"math"
	"sort"
	"time"

	"wrht/internal/core"
	"wrht/internal/fabric"
	"wrht/internal/rwa"
	"wrht/internal/topo"
)

// Candidate is one priced execution plan for the phase.
type Candidate struct {
	Plan core.PhasePlan
	// Steps is the plan's emitted step count.
	Steps int
	// Predicted is the plan's execution time in seconds under the
	// planner's fabric and overlap mode, accumulated exactly as
	// fabric.Engine would.
	Predicted float64
}

// Decision is the outcome of one Plan call. Candidates and Schedule
// alias the planner's pooled buffers: they are valid until the next
// Plan call, and callers that retain them must copy (Materialize does).
type Decision struct {
	// R is the representative count, W the wavelength budget the
	// candidates were enumerated under (0 = uncapped).
	R, W int
	// DBytes is the per-node payload the candidates were priced for.
	DBytes float64
	// Fabric names the pricing backend.
	Fabric string
	// Overlap records whether boundary overlap was priced in.
	Overlap bool
	// Candidates are the feasible plans in enumeration order; Chosen
	// indexes the strict argmin of Predicted (first wins ties).
	Candidates []Candidate
	Chosen     int
	// Seconds is the wall-clock time Plan spent enumerating and pricing
	// this decision — profiling data only, never part of the simulated
	// outcome.
	Seconds float64
	// Schedule is the chosen plan's steps, ready to substitute for the
	// all-to-all phase span.
	Schedule []core.Step
}

// Best returns the chosen candidate.
func (d Decision) Best() Candidate { return d.Candidates[d.Chosen] }

// Materialize copies the chosen schedule out of the planner's pooled
// buffers into a standalone core.Schedule.
func (d Decision) Materialize(ring topo.Ring) *core.Schedule {
	s := &core.Schedule{Algorithm: "a2a-plan", Ring: ring}
	s.Steps = make([]core.Step, len(d.Schedule))
	for i, st := range d.Schedule {
		s.Steps[i] = core.Step{Phase: st.Phase, Transfers: append([]core.Transfer(nil), st.Transfers...)}
	}
	return s
}

// Observer receives every decision (internal/obs implements it over the
// metrics registry and tracer). Nil observers are skipped.
type Observer interface {
	Decided(Decision)
}

// Planner prices phase plans on a fabric and picks the cheapest.
// The zero value is not usable: Fabric must be set. A Planner is
// single-goroutine state (its buffers are reused across calls).
type Planner struct {
	// Fabric prices the candidate steps (its StepCost is the ground
	// truth the engine will charge).
	Fabric fabric.Fabric
	// Budget is the per-direction wavelength budget candidates must
	// respect; 0 means uncapped (packet-switched fabrics). It must
	// match the budget the surrounding schedule validates against.
	Budget int
	// Overlap prices the engine's reconfiguration–communication
	// overlap: rwa-disjoint consecutive rounds hide min(setup, previous
	// transmission), which is what makes staggered plans win.
	Overlap bool
	// Observer, when non-nil, receives every Decision.
	Observer Observer

	builder core.PhaseBuilder
	chosen  core.PhaseBuilder
	probe   *rwa.Probe
	ring    topo.Ring
	cands   []Candidate
	plans   []core.PhasePlan
	plansR  int
	plansW  int
}

// Plan enumerates, validates and prices every feasible plan for an
// all-to-all phase among the representatives (strictly ascending ring
// positions) carrying dBytes per node, and returns the argmin. The
// returned Decision aliases pooled buffers valid until the next call.
func (pl *Planner) Plan(ring topo.Ring, reps []int, dBytes float64) (Decision, error) {
	if pl.Fabric == nil {
		return Decision{}, fmt.Errorf("plan: planner has no fabric")
	}
	t0 := time.Now()
	r := len(reps)
	elems, err := core.ElemsOf(dBytes)
	if err != nil {
		return Decision{}, fmt.Errorf("plan: %w", err)
	}
	if pl.probe == nil || pl.ring != ring {
		pl.probe = rwa.NewProbe(ring)
		pl.ring = ring
	}
	if pl.plans == nil || pl.plansR != r || pl.plansW != pl.Budget {
		pl.plans = core.PhasePlans(r, pl.Budget)
		pl.plansR, pl.plansW = r, pl.Budget
	}
	if len(pl.plans) == 0 {
		return Decision{}, fmt.Errorf("plan: no feasible plan for r=%d under budget %d", r, pl.Budget)
	}
	pl.cands = pl.cands[:0]
	best := -1
	for _, p := range pl.plans {
		steps, err := pl.builder.Build(ring, reps, p)
		if err != nil {
			return Decision{}, fmt.Errorf("plan: build %s: %w", p, err)
		}
		if err := pl.validateRounds(ring, steps); err != nil {
			return Decision{}, fmt.Errorf("plan: candidate %s: %w", p, err)
		}
		t := pl.price(ring, steps, elems)
		pl.cands = append(pl.cands, Candidate{Plan: p, Steps: len(steps), Predicted: t})
		if best < 0 || t < pl.cands[best].Predicted {
			best = len(pl.cands) - 1
		}
	}
	steps, err := pl.chosen.Build(ring, reps, pl.cands[best].Plan)
	if err != nil {
		return Decision{}, fmt.Errorf("plan: rebuild chosen %s: %w", pl.cands[best].Plan, err)
	}
	d := Decision{
		R: r, W: pl.Budget, DBytes: dBytes,
		Fabric: pl.Fabric.Name(), Overlap: pl.Overlap,
		Candidates: pl.cands, Chosen: best, Schedule: steps,
		Seconds: time.Since(t0).Seconds(),
	}
	if pl.Observer != nil {
		pl.Observer.Decided(d)
	}
	return d, nil
}

// validateRounds checks every round of a candidate against the
// wavelength budget through the pooled probe (a planner bug that
// over-subscribes a round must fail here, not in the engine). Uncapped
// planners skip it: without circuit semantics there is nothing to
// check.
func (pl *Planner) validateRounds(ring topo.Ring, steps []core.Step) error {
	if pl.Budget <= 0 {
		return nil
	}
	for k := range steps {
		st := &steps[k]
		pl.probe.Begin(len(st.Transfers))
		for _, t := range st.Transfers {
			pl.probe.Add(rwa.Request{Src: t.Src, Dst: t.Dst, Dir: t.Dir}, ring.ArcOf(t.Src, t.Dst, t.Dir), t.Wavelength)
		}
		pl.probe.Index().Stats = nil
		if err := pl.probe.Validate(pl.Budget); err != nil {
			return fmt.Errorf("round %d: %w", k, err)
		}
	}
	return nil
}

// price accumulates the steps' cost exactly as fabric.Engine.timeSteps
// does: Σ (Total − hidden), hiding min(setup, previous transmission) at
// rwa-disjoint boundaries in overlap mode.
func (pl *Planner) price(ring topo.Ring, steps []core.Step, elems int) float64 {
	var t, prevTransmit float64
	for k := range steps {
		c := pl.Fabric.StepCost(steps[k], elems)
		var hidden float64
		if pl.Overlap && k > 0 && c.Setup > 0 && prevTransmit > 0 &&
			fabric.StepsDisjoint(pl.probe, ring, steps[k-1], steps[k], nil) {
			hidden = math.Min(c.Setup, prevTransmit)
		}
		t += c.Total - hidden
		prevTransmit = c.Transmission()
	}
	return t
}

// Cost is the analytic closed form of a plan's execution time without
// overlap: every round pays the reconfiguration overhead a plus its
// busiest circuit's wire time, and a plan's total wire payload is
// SerWeight·d (each round's busiest circuit carries d/stripe). It
// ignores the sub-microsecond O/E/O term and the ≤ 4-byte stripe
// rounding, so it tracks the fabric-priced Predicted to within a part
// in ~10⁶ on the optical ring — close enough that the two agree on the
// argmin across the swept grid (asserted by TestCostArgminConsistent).
func Cost(p core.PhasePlan, dBytes, aSec, bandwidthBps float64) float64 {
	return float64(p.NumSteps())*aSec + p.SerWeight()*dBytes*8/bandwidthBps
}

// sortedNodes collects the distinct node ids touched by the steps in
// ascending order — the representative set of an all-to-all phase span.
func sortedNodes(steps []core.Step) []int {
	seen := map[int]bool{}
	var out []int
	for i := range steps {
		for _, t := range steps[i].Transfers {
			for _, n := range [2]int{t.Src, t.Dst} {
				if !seen[n] {
					seen[n] = true
					out = append(out, n)
				}
			}
		}
	}
	sort.Ints(out)
	return out
}
