package core

import (
	"testing"

	"wrht/internal/topo"
)

func TestTorusScheduleStepsMatchAnalysis(t *testing.T) {
	cases := []struct{ r, c, w, m int }{
		{4, 4, 2, 0}, {8, 8, 4, 0}, {3, 15, 2, 5}, {16, 16, 64, 0}, {1, 8, 2, 0}, {8, 1, 2, 0},
	}
	for _, cse := range cases {
		tor := topo.NewTorus(cse.r, cse.c)
		s, err := BuildWRHTTorus(tor, cse.w, cse.m)
		if err != nil {
			t.Fatalf("%dx%d: %v", cse.r, cse.c, err)
		}
		want, err := StepsWRHTTorus(tor, cse.w, cse.m)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumSteps() != want {
			t.Errorf("%dx%d: built %d steps, analysis %d", cse.r, cse.c, s.NumSteps(), want)
		}
		if err := ValidateTorus(s, tor, cse.w); err != nil {
			t.Errorf("%dx%d: %v", cse.r, cse.c, err)
		}
	}
}

func TestTorusBeatsFlatRingOnSteps(t *testing.T) {
	// A 32×32 torus with few wavelengths needs far fewer steps than the
	// same 1024 nodes on a single ring (the §6.1 motivation).
	tor := topo.NewTorus(32, 32)
	torSteps, err := StepsWRHTTorus(tor, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := StepsWRHT(Config{N: 1024, Wavelengths: 4})
	if err != nil {
		t.Fatal(err)
	}
	if torSteps > flat.Total {
		t.Errorf("torus steps %d > flat ring steps %d", torSteps, flat.Total)
	}
}

func TestValidateTorusRejectsDiagonal(t *testing.T) {
	tor := topo.NewTorus(4, 4)
	s := &Schedule{Ring: topo.NewRing(16), Steps: []Step{{
		Transfers: []Transfer{{Src: 0, Dst: 5, Chunk: whole()}}, // (0,0)->(1,1)
	}}}
	if err := ValidateTorus(s, tor, 0); err == nil {
		t.Fatal("diagonal transfer accepted")
	}
}
