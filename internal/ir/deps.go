package ir

import "wrht/internal/tensor"

// Dependency analysis. A step j depends on an earlier step i when some
// node's vector elements are written by one and read or written by the
// other (RAW, WAR or WAW): transfer Src reads its chunk, transfer Dst
// writes it (OpSum additionally reads the destination range, but that
// read is covered by the write of the same range, so tracking
// reads=src / writes=dst is exact for hazard purposes).
//
// Chunk ranges are compared exactly by evaluating Chunk.Range at a
// common resolution L: the LCM of every chunk's divisor product. At
// such an L every split is even (no ±1 rounding), so [lo, hi) at
// resolution L is the chunk's exact rational span and overlap checks
// are precise at any real vector length. Should L overflow the cap
// (pathological nesting), the analysis degrades conservatively to
// whole-node granularity — extra edges only, never a missed hazard.

// maxResolution caps the common chunk resolution; beyond it the
// analysis falls back to node granularity.
const maxResolution = 1 << 20

// span is a half-open element interval at the common resolution.
type span struct{ lo, hi int }

// access is one step's read/write footprint: per node, the element
// spans its transfers read (as sources) and write (as destinations).
type access struct {
	reads, writes map[int][]span
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// chunkDenom returns the product of the chunk's nested divisors — the
// denominator of its rational span — saturating above maxResolution.
func chunkDenom(c tensor.Chunk) int {
	d := c.Of
	for sub := c.Sub; sub != nil; sub = sub.Sub {
		if d > maxResolution {
			return d
		}
		d *= sub.Of
	}
	return d
}

// resolution returns the common chunk resolution L, or 0 when it would
// exceed maxResolution (node-granularity fallback).
func (p *Program) resolution() int {
	res := 1
	for i := range p.Steps {
		for _, t := range p.Steps[i].Transfers {
			d := chunkDenom(t.Chunk)
			if d <= 0 || d > maxResolution {
				return 0
			}
			res = res / gcd(res, d) * d
			if res > maxResolution {
				return 0
			}
		}
	}
	return res
}

// stepAccess collects one step's footprint at resolution res (res == 0
// means node granularity: every access covers the whole vector).
func stepAccess(st *Step, res int) access {
	a := access{reads: map[int][]span{}, writes: map[int][]span{}}
	for _, t := range st.Transfers {
		sp := span{0, 1}
		if res > 0 {
			sp.lo, sp.hi = t.Chunk.Range(res)
		}
		a.reads[t.Src] = append(a.reads[t.Src], sp)
		a.writes[t.Dst] = append(a.writes[t.Dst], sp)
	}
	return a
}

func spansOverlap(a, b []span) bool {
	for _, x := range a {
		for _, y := range b {
			if x.lo < y.hi && y.lo < x.hi {
				return true
			}
		}
	}
	return false
}

// conflicts reports whether two step footprints carry a hazard.
func conflicts(a, b access) bool {
	for n, w := range a.writes {
		if spansOverlap(w, b.reads[n]) || spansOverlap(w, b.writes[n]) {
			return true
		}
	}
	for n, r := range a.reads {
		if spansOverlap(r, b.writes[n]) {
			return true
		}
	}
	return false
}

// analyze recomputes every step's Deps from scratch. Mutating passes
// call it after changing step order, count, or chunks (wavelength-only
// rewrites don't move data and may skip it).
func (p *Program) analyze() {
	res := p.resolution()
	acc := make([]access, len(p.Steps))
	for i := range p.Steps {
		acc[i] = stepAccess(&p.Steps[i], res)
	}
	for j := range p.Steps {
		p.Steps[j].Deps = nil
		for i := 0; i < j; i++ {
			if conflicts(acc[i], acc[j]) {
				p.Steps[j].Deps = append(p.Steps[j].Deps, i)
			}
		}
	}
}
