package fabric

import "wrht/internal/core"

// Observer receives per-step execution events from the Engine as it
// times a collective. The engine calls it synchronously, in schedule
// order, with simulated timestamps — an observer that records them (the
// Perfetto tracer in internal/obs) reconstructs the full timeline the
// run computes and otherwise throws away. A nil Options.Observer costs
// one pointer comparison per step and zero allocations, pinned by
// BenchmarkEngineNilObserver.
//
// The interface lives here rather than in internal/obs so that the
// engine has no observability dependency; internal/obs implements it.
type Observer interface {
	// StepExecuted fires once per explicit-schedule step, after the
	// step's cost and overlap decision are known and before the result
	// accumulates.
	StepExecuted(ev StepEvent)
	// GroupExecuted fires once per profile group in a RunProfile /
	// RunBuckets run (profiles have no per-step circuits, so this is the
	// finest granularity available).
	GroupExecuted(ev GroupEvent)
}

// StepEvent describes one executed schedule step. All times are
// simulated seconds.
type StepEvent struct {
	// Index is the step's position in the schedule.
	Index int
	// Start is when the step's visible window begins: the step occupies
	// [Start, Start+Cost.Total−Hidden]. When Hidden > 0 the hidden
	// portion of the circuit setup ran during [Start−Hidden, Start],
	// under the previous step's transmission.
	Start float64
	// Step is the executed step (phase + transfers with their assigned
	// wavelengths). The pointer aliases the schedule; observers must not
	// mutate it.
	Step *core.Step
	// Cost is the fabric's timing decomposition for the step.
	Cost StepCost
	// Hidden is how much of Cost.Setup overlap mode hid (zero unless
	// Options.Overlap and the boundary was rwa-disjoint).
	Hidden float64
	// Elems is the per-node vector length in 4-byte elements.
	Elems int
}

// GroupEvent describes one executed profile group: Steps identical
// steps of cost Cost each, starting at simulated time Start.
type GroupEvent struct {
	// Index is the group's position in the profile.
	Index int
	// Start is when the group's first step begins.
	Start float64
	// Steps is the number of identical steps in the group.
	Steps int
	// Bytes is the payload of the group's busiest circuit.
	Bytes float64
	// Cost is the fabric's timing decomposition for one step.
	Cost StepCost
}
