package optical

import (
	"math"

	"wrht/internal/core"
	"wrht/internal/phys"
)

// Energy model: the paper motivates optics partly by power (§1); this
// estimates the communication energy of a collective on the ring so the
// step-count argument can be made in joules as well as seconds. Three
// components, consistent with silicon-photonics link budgets:
//
//   - laser energy: every active wavelength's source runs for the step's
//     duration at the laser wall power (derived from the §4.4 budget's
//     per-wavelength optical power and a wall-plug efficiency),
//   - O/E/O conversion energy per bit at the transceivers,
//   - MRR tuning energy per reconfiguration event.
type EnergyParams struct {
	// LaserWallW is the electrical wall power per active wavelength
	// source (optical power / wall-plug efficiency).
	LaserWallW float64
	// PJPerBit is the transceiver O/E/O energy in picojoules per bit.
	PJPerBit float64
	// TuneNJ is the energy per MRR retuning event in nanojoules.
	TuneNJ float64
}

// DefaultEnergyParams derives the laser wall power from the given §4.4
// budget assuming 10% wall-plug efficiency, with 1 pJ/bit transceivers
// and 20 nJ per MRR retune (representative TeraPHY-class figures).
func DefaultEnergyParams(b phys.Budget) EnergyParams {
	opticalW := math.Pow(10, b.LaserPowerDBm/10) / 1e3 // dBm → W
	return EnergyParams{
		LaserWallW: opticalW / 0.10,
		PJPerBit:   1.0,
		TuneNJ:     20,
	}
}

// EnergyResult breaks down the communication energy of one collective.
type EnergyResult struct {
	LaserJ  float64
	OEOJ    float64
	TuningJ float64
}

// Total returns the summed energy in joules.
func (e EnergyResult) Total() float64 { return e.LaserJ + e.OEOJ + e.TuningJ }

// EnergyOfProfile estimates the energy of a collective described by an
// analytic profile carrying dBytes per node. Laser energy charges every
// wavelength the step keeps lit for the step duration; O/E/O charges
// each transmitted bit once per conversion pair; tuning charges every
// per-step reconfiguration across the wavelengths it touches.
func EnergyOfProfile(p Params, ep EnergyParams, pr core.Profile, dBytes float64) EnergyResult {
	var out EnergyResult
	for _, g := range pr.Groups {
		bytes := g.FracOfD * dBytes
		stepDur := p.transferTime(bytes)
		waves := g.Wavelengths
		if waves < 1 {
			waves = 1
		}
		out.LaserJ += float64(g.Steps) * float64(waves) * ep.LaserWallW * stepDur
		out.OEOJ += float64(g.Steps) * float64(waves) * bytes * 8 * ep.PJPerBit * 1e-12
		out.TuningJ += float64(g.Steps) * float64(waves) * ep.TuneNJ * 1e-9
	}
	return out
}
