// Package daemon implements wrhtd's HTTP server: the versioned JSON
// API (internal/api) served over /v1/build, /v1/simulate, /v1/sweep
// and /v1/plan, plus the Prometheus /metrics endpoint.
//
// Three disciplines keep a burst of clients from melting the process:
// requests with equal canonical keys coalesce onto one execution
// (flight.go — responses are pure functions of the request, so
// sharing is sound); all sweeps share one bounded worker pool
// (exp.Pool) instead of spawning per-request pools; and every
// execution runs under a context that dies when its last waiter hangs
// up or the daemon drains, threaded into the exp sweep loops.
package daemon

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"wrht"
	"wrht/internal/api"
	"wrht/internal/exp"
	"wrht/internal/obs"
)

// Config parameterizes New.
type Config struct {
	// Workers bounds the shared sweep worker pool (0 = GOMAXPROCS).
	Workers int
	// Registry receives the per-endpoint request/error/coalescing
	// counters and latency histograms, and backs /metrics. Nil gets a
	// fresh registry (reachable via Registry()).
	Registry *obs.Registry
}

// Server is the daemon's HTTP surface plus the shared execution
// state behind it.
type Server struct {
	reg    *obs.Registry
	pool   *exp.Pool
	flight flight
	mux    *http.ServeMux
	// base scopes all request execution: canceling it (Close) aborts
	// in-flight sweeps at their next point boundary.
	base context.Context
	stop context.CancelFunc
}

// New assembles a server. Callers serve Handler() (wrhtd wraps it in
// StartGraceful) and must Close() after the HTTP server has drained.
func New(cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		reg:  reg,
		pool: exp.NewPool(cfg.Workers),
		mux:  http.NewServeMux(),
		base: base,
		stop: stop,
	}
	// Request latency is wall clock; flag it so determinism checks and
	// the byte-parity tests can strip it.
	reg.MarkVolatile("api.request.seconds")
	s.mux.Handle("/metrics", reg.MetricsHandler())
	s.mux.Handle("/v1/build", endpoint(s, "build", execBuild))
	s.mux.Handle("/v1/simulate", endpoint(s, "simulate", execSimulate))
	s.mux.Handle("/v1/sweep", endpoint(s, "sweep", execSweep))
	s.mux.Handle("/v1/plan", endpoint(s, "plan", execPlan))
	return s
}

// Handler returns the daemon's routing mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the metric registry backing /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Close cancels all in-flight executions and stops the shared pool.
// Call it after the HTTP server has drained.
func (s *Server) Close() {
	s.stop()
	s.pool.Close()
}

// options builds the exp configuration for one execution: metrics
// into the daemon registry, compute on the shared pool, lifetime
// bounded by ctx.
func (s *Server) options(ctx context.Context) exp.Options {
	o := exp.Defaults()
	o.Metrics = s.reg
	o.Pool = s.pool
	o.Ctx = ctx
	return o
}

func execBuild(s *Server, ctx context.Context, req api.BuildRequest) (any, *api.Error) {
	if err := ctx.Err(); err != nil {
		return nil, api.AsError(err)
	}
	return wrht.ServeBuild(req)
}

func execSimulate(s *Server, ctx context.Context, req api.SimulateRequest) (any, *api.Error) {
	if err := ctx.Err(); err != nil {
		return nil, api.AsError(err)
	}
	return wrht.ServeSimulate(req)
}

func execSweep(s *Server, ctx context.Context, req api.SweepRequest) (any, *api.Error) {
	resp, _, aerr := api.RunSweep(s.options(ctx), req)
	if aerr != nil {
		return nil, aerr
	}
	return resp, nil
}

func execPlan(s *Server, ctx context.Context, req api.PlanRequest) (any, *api.Error) {
	resp, _, aerr := api.RunPlan(s.options(ctx), req)
	if aerr != nil {
		return nil, aerr
	}
	return resp, nil
}

// keyer is what a request type must provide to be coalescable.
type keyer interface{ Key() string }

// endpoint wires one request type to its executor: decode (strictly —
// unknown fields are a bad_request, catching schema drift early),
// coalesce on the canonical key, execute under the daemon-scoped
// context, encode. Per-endpoint counters and a latency histogram feed
// the obs registry.
func endpoint[Req keyer](s *Server, name string, exec func(*Server, context.Context, Req) (any, *api.Error)) http.Handler {
	requests := s.reg.Counter(obs.Labeled("api.requests", "endpoint", name))
	failures := s.reg.Counter(obs.Labeled("api.errors", "endpoint", name))
	hits := s.reg.Counter(obs.Labeled("api.coalesce.hits", "endpoint", name))
	hist := s.reg.Histogram(obs.Labeled("api.request.seconds", "endpoint", name))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		requests.Inc()
		if r.Method != http.MethodPost {
			failures.Inc()
			writeError(w, api.Errorf(api.CodeMethodNotAllowed, "%s takes POST", r.URL.Path))
			return
		}
		var req Req
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			failures.Inc()
			writeError(w, api.Errorf(api.CodeBadRequest, "decoding request: %v", err))
			return
		}
		v, err, shared := s.flight.Do(r.Context(), s.base, name+"\x00"+req.Key(), func(ctx context.Context) (any, error) {
			resp, aerr := exec(s, ctx, req)
			if aerr != nil {
				return nil, aerr
			}
			return resp, nil
		})
		if shared {
			hits.Inc()
		}
		hist.Observe(time.Since(start).Seconds())
		if err != nil {
			failures.Inc()
			writeError(w, api.AsError(err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		api.Encode(w, v)
	})
}

// writeError serves the typed error envelope under its HTTP status.
func writeError(w http.ResponseWriter, e *api.Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.HTTPStatus())
	api.Encode(w, api.ErrorEnvelope{Error: e})
}
