package obs

import (
	"testing"

	"wrht/internal/core"
	"wrht/internal/plan"
)

func decision(family string, n int) plan.Decision {
	return plan.Decision{
		R: 16, W: 8, Fabric: "optical",
		Candidates: append(make([]plan.Candidate, n-1),
			plan.Candidate{Plan: core.PhasePlan{Family: family}, Steps: 3, Predicted: 1e-3}),
		Chosen: n - 1,
	}
}

func TestPlanObserverCountersAndSpans(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer()
	now := 0.0
	tr.Clock = func() float64 { now++; return now }
	o := NewPlanObserver(tr, reg)
	o.Decided(decision("k-round", 5))
	o.Decided(decision("k-round", 3))
	o.Decided(decision("one-shot", 2))
	s := reg.Snapshot()
	for name, want := range map[string]int64{
		"plan.decisions":       3,
		"plan.candidates":      10,
		"plan.chosen.k-round":  2,
		"plan.chosen.one-shot": 1,
	} {
		if got := s.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if tr.Events() != 3 {
		t.Errorf("tracer recorded %d spans, want 3", tr.Events())
	}
}

func TestPlanObserverIsNilSafe(t *testing.T) {
	// No sinks at all: must not panic.
	NewPlanObserver(nil, nil).Decided(decision("hybrid", 1))
	// A tracer without a wall clock must stay span-free: decisions are
	// wall-clock diagnostics, not simulated time.
	tr := NewTracer()
	NewPlanObserver(tr, nil).Decided(decision("hybrid", 1))
	if tr.Events() != 0 {
		t.Errorf("clockless tracer recorded %d events, want 0", tr.Events())
	}
	var nilObs *PlanObserver
	nilObs.Decided(decision("hybrid", 1))
}
