// Command wrhtsim regenerates the paper's evaluation: each subcommand
// reproduces one table or figure of
// "WRHT: Efficient All-reduce for Distributed DNN Training in Optical
// Interconnect Systems" (ICPP 2023) on the in-repo optical and
// electrical simulators.
//
// Usage:
//
//	wrhtsim [-granularity fused|bucketed] <table1|fig4|fig5|fig6|fig7|constraints|crossover|crossfabric|faults|hybrid|extras|stragglers|overlap|plan|schedule|build|all>
//
// Flags may also follow the subcommand (`wrhtsim faults -n 64`).
//
// The faults subcommand sweeps WRHT completion time against dead
// wavelengths (internal/exp.Degradation): schedules rebuilt around the
// fault mask upfront versus the same faults injected mid-run through
// the engine's retry-with-reschedule path. Without -n it covers the
// paper trio N ∈ {64, 1024, 4096}.
//
// The overlap subcommand compares the engine's opportunistic overlap
// mode against schedules rewritten by the internal/ir pass pipeline
// (DESIGN.md §2.5), reporting hidden-reconfig counts, hidden setup
// time and total time per ring size. Without -n it covers N ∈ {1024,
// 4096}. -passes selects the pipeline ("all", "none", or a
// comma-separated subset of reorder, recolor, split); -check makes the
// run exit nonzero unless the passes strictly beat the baseline
// hidden-reconfig count at every point (the CI smoke gate).
//
// The plan subcommand sweeps the internal/plan cost-model planner for
// the final all-to-all over an (r, a) grid at the -w budget (DESIGN.md
// §2.7): every candidate plan is priced analytically and re-simulated
// on the engine, and the table reports the chosen family, predicted
// and simulated times, and the unstriped one-shot / gather-fallback
// comparators. A second table measures the planner rescue on the named
// fallback configurations (N=256 w=8, N=1024 w=16). -r and -a take
// comma-separated replica counts and reconfiguration delays (us), -d
// the payload in MB; -check exits nonzero unless predicted == simulated
// argmin at every point and every rescue speedup exceeds 1 (the CI
// gate); -json dumps the swept points and rescue rows.
//
// The build subcommand constructs and validates the -n/-w/-m WRHT
// schedule without simulating it — the at-scale smoke test for the
// streaming pipeline. -stream consumes the schedule as a step stream
// (peak memory O(max step) + O(index), so million-node rings fit
// comfortably); -memstats reports the measured peak live heap and
// bytes/node for either mode. Example:
//
//	wrhtsim build -n 1048576 -w 64 -stream -memstats
//
// -cpuprofile and -memprofile write pprof profiles covering the run
// (any subcommand), for `go tool pprof`.
//
// -trace writes a Chrome Trace Event / Perfetto timeline of the run
// (open it at https://ui.perfetto.dev): for crossfabric the simulated
// per-step timeline of every (algorithm, mode) cell, byte-identical
// across runs; for the figure sweeps a wall-clock diagnostic of the
// worker pool.
//
// -metrics dumps the metric registry on exit ("-" for stdout), by
// default in the Prometheus text exposition format;
// -metrics-format=legacy restores the old sorted name/value dump (a
// .json suffix for a JSON snapshot). -prom writes the Prometheus
// exposition to a file regardless of -metrics, and -promaddr serves
// /metrics (append ?reset=1 for snapshot-and-reset delta scrapes) plus
// net/http/pprof for the run's duration:
//
//	wrhtsim -promaddr :9090 fig5 &
//	curl localhost:9090/metrics
//	go tool pprof "http://localhost:9090/debug/pprof/profile?seconds=5"
//
// Any metrics-enabled run also prints a wall-clock latency summary
// (p50/p99/max per histogram series) on exit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"wrht/internal/core"
	"wrht/internal/dnn"
	"wrht/internal/exp"
	"wrht/internal/fabric"
	"wrht/internal/ir"
	"wrht/internal/metrics"
	"wrht/internal/obs"
	"wrht/internal/optical"
	"wrht/internal/parallel"
	"wrht/internal/rwa"
	"wrht/internal/trace"
	"wrht/internal/workload"
)

// fatal prints the error and returns the failure exit code; run's
// callers (not os.Exit) unwind so the pprof writers always flush.
func fatal(err error) int {
	fmt.Fprintf(os.Stderr, "wrhtsim: %v\n", err)
	return 1
}

// overlapPasses resolves the -passes flag: "all" selects the default
// pipeline (nil, so exp.OverlapSweep uses exp.OverlapPasses), "none"
// the identity pipeline (an empty non-nil slice — a round-trip
// control), anything else a comma-separated pass subset in the given
// order.
func overlapPasses(spec string, p optical.Params, dBytes float64) ([]ir.Pass, error) {
	switch spec {
	case "", "all":
		return nil, nil
	case "none":
		return []ir.Pass{}, nil
	}
	var out []ir.Pass
	for _, name := range strings.Split(spec, ",") {
		switch strings.TrimSpace(name) {
		case "reorder":
			out = append(out, ir.Reorder{})
		case "recolor":
			out = append(out, ir.Recolor{})
		case "split":
			out = append(out, &ir.Split{
				SetupSeconds:   p.ReconfigDelay,
				BytesPerSecond: p.BandwidthBps / 8,
				PayloadBytes:   dBytes,
			})
		default:
			return nil, fmt.Errorf("unknown IR pass %q (want reorder, recolor, split, all or none)", name)
		}
	}
	return out, nil
}

// intList and floatList parse the comma-separated -r/-a grid flags.
func intList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func floatList(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	gran := flag.String("granularity", "fused", "all-reduce invocation granularity: fused or bucketed")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	jsonOut := flag.String("json", "", "write raw figure series to this JSON file")
	schedN := flag.Int("n", 64, "schedule/crossfabric/faults subcommands: ring size")
	schedW := flag.Int("w", 8, "schedule/crossfabric/faults subcommands: wavelengths")
	schedM := flag.Int("m", 0, "schedule subcommand: grouped nodes (0 = optimal)")
	payloadMB := flag.Float64("d", 100, "crossfabric/faults/overlap subcommands: payload per node in MB")
	stream := flag.Bool("stream", false, "build subcommand: stream-and-consume instead of materializing the schedule")
	memstats := flag.Bool("memstats", false, "build subcommand: report peak live heap and bytes/node for the construction")
	passSpec := flag.String("passes", "all", "overlap subcommand: IR passes to run (all, none, or comma-separated reorder,recolor,split)")
	check := flag.Bool("check", false, "overlap/plan subcommands: exit nonzero unless the gate holds at every point")
	planR := flag.String("r", "8,16,32", "plan subcommand: comma-separated representative counts")
	planA := flag.String("a", "25", "plan subcommand: comma-separated reconfiguration delays in µs")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	tracePath := flag.String("trace", "", "write a Perfetto trace (Chrome Trace Event JSON) to this file")
	metricsPath := flag.String("metrics", "", "write the metric registry to this file on exit (- for stdout; format per -metrics-format)")
	metricsFormat := flag.String("metrics-format", "prom", "-metrics serialization: prom (Prometheus text exposition) or legacy (sorted name/value lines, .json for a JSON snapshot)")
	promPath := flag.String("prom", "", "write the Prometheus text exposition to this file on exit (- for stdout)")
	promAddr := flag.String("promaddr", "", "serve /metrics (Prometheus text) and /debug/pprof on this address for the run's duration (e.g. :9090)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wrhtsim [-granularity fused|bucketed] <table1|fig4|fig5|fig6|fig7|constraints|crossover|crossfabric|faults|hybrid|extras|stragglers|overlap|plan|schedule|build|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmdArg := flag.Arg(0)
	if flag.NArg() > 1 {
		// Flags may follow the subcommand: `wrhtsim faults -n 64`.
		flag.CommandLine.Parse(flag.Args()[1:])
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
	}
	nSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "n" {
			nSet = true
		}
	})
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wrhtsim: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "wrhtsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	code := run(runConfig{
		cmd:           cmdArg,
		nSet:          nSet,
		granularity:   *gran,
		workers:       *workers,
		jsonOut:       *jsonOut,
		n:             *schedN,
		w:             *schedW,
		m:             *schedM,
		payloadMB:     *payloadMB,
		stream:        *stream,
		memstats:      *memstats,
		passes:        *passSpec,
		check:         *check,
		planR:         *planR,
		planA:         *planA,
		tracePath:     *tracePath,
		metricsPath:   *metricsPath,
		metricsFormat: *metricsFormat,
		promPath:      *promPath,
		promAddr:      *promAddr,
	})
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wrhtsim: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "wrhtsim: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
	os.Exit(code)
}

// runConfig carries one invocation's resolved flags, so tests can
// drive run without the flag package.
type runConfig struct {
	cmd         string
	granularity string
	workers     int
	jsonOut     string
	n, w, m     int
	// nSet records whether -n was given explicitly; the faults sweep
	// covers the paper trio {64, 1024, 4096} otherwise.
	nSet      bool
	payloadMB float64
	// stream/memstats drive the build subcommand: streamed vs
	// materialized construction and the memory report.
	stream   bool
	memstats bool
	// passes/check drive the overlap subcommand: the IR pass selection
	// and the strict-improvement gate (check also gates plan).
	passes string
	check  bool
	// planR/planA drive the plan subcommand: comma-separated
	// representative counts and reconfiguration delays (µs).
	planR, planA string
	tracePath    string
	metricsPath  string
	// metricsFormat selects the -metrics serialization: "prom" (default,
	// Prometheus text exposition) or "legacy" (the pre-exposition dump:
	// sorted name/value lines, or a JSON snapshot for .json paths).
	metricsFormat string
	// promPath writes the Prometheus exposition to a file on exit;
	// promAddr serves /metrics and /debug/pprof over HTTP for the run's
	// duration.
	promPath string
	promAddr string
}

func run(cfg runConfig) int {
	o := exp.Defaults()
	o.Workers = cfg.workers
	switch cfg.granularity {
	case "fused":
		o.Granularity = exp.Fused
	case "bucketed":
		o.Granularity = exp.Bucketed
	default:
		fmt.Fprintf(os.Stderr, "wrhtsim: unknown granularity %q\n", cfg.granularity)
		return 2
	}
	if cfg.tracePath != "" {
		o.Trace = obs.NewTracer()
		if cfg.cmd != "crossfabric" {
			// Figure sweeps trace the worker pool in wall-clock time (a
			// diagnostic); crossfabric leaves Clock nil, so its trace is the
			// byte-stable simulated timeline the golden tests pin.
			start := time.Now()
			o.Trace.Clock = func() float64 { return time.Since(start).Seconds() }
		}
	}
	switch cfg.metricsFormat {
	case "", "prom", "legacy":
	default:
		fmt.Fprintf(os.Stderr, "wrhtsim: unknown metrics format %q (want prom or legacy)\n", cfg.metricsFormat)
		return 2
	}
	if cfg.metricsPath != "" || cfg.promPath != "" || cfg.promAddr != "" {
		o.Metrics = obs.NewRegistry()
	}
	if cfg.promAddr != "" {
		// Serve /metrics (Prometheus text; ?reset=1 for snapshot-and-reset
		// delta scrapes) plus net/http/pprof for the run's duration, on a
		// private mux so nothing leaks onto http.DefaultServeMux.
		mux := http.NewServeMux()
		reg := o.Metrics
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if r.URL.Query().Get("reset") == "1" {
				reg.ExposeAndReset(w)
				return
			}
			reg.Expose(w)
		})
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		ln, err := net.Listen("tcp", cfg.promAddr)
		if err != nil {
			return fatal(fmt.Errorf("-promaddr: %w", err))
		}
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "wrhtsim: serving /metrics and /debug/pprof on http://%s\n", ln.Addr())
	}

	cmd := cfg.cmd
	ran := false
	var rec trace.Recorder
	if cmd == "schedule" {
		// Dump the WRHT schedule for -n/-w/-m as JSON (loadable by a
		// control plane or core.ReadSchedule).
		s, err := core.BuildWRHT(core.Config{N: cfg.n, Wavelengths: cfg.w, GroupSize: cfg.m})
		if err != nil {
			return fatal(err)
		}
		if _, err := s.WriteTo(os.Stdout); err != nil {
			return fatal(err)
		}
		return 0
	}
	if cmd == "build" {
		// Construct (and validate) the WRHT schedule for -n/-w/-m without
		// simulating it — the at-scale smoke test for the streamed
		// pipeline. -stream selects stream-and-consume (peak memory
		// O(max step) + O(index)); -memstats reports the measured peak
		// live heap, normalized per node.
		wcfg := core.Config{N: cfg.n, Wavelengths: cfg.w, GroupSize: cfg.m}
		if cfg.memstats {
			var rep exp.MemReport
			var err error
			if cfg.stream {
				rep, err = exp.StreamedBuildMem(func() (core.StepSource, error) {
					return core.StreamWRHT(wcfg)
				}, cfg.w, true)
			} else {
				rep, err = exp.MaterializedBuildMem(func() (*core.Schedule, error) {
					return core.BuildWRHT(wcfg)
				}, cfg.w, true)
			}
			if err != nil {
				return fatal(err)
			}
			fmt.Println(rep)
			return 0
		}
		if cfg.stream {
			src, err := core.StreamWRHT(wcfg)
			if err != nil {
				return fatal(err)
			}
			ring := src.Ring()
			v := core.NewStepValidator(ring, rwa.NewIndex(ring), cfg.w)
			steps, transfers := 0, 0
			for {
				st, ok := src.Next()
				if !ok {
					break
				}
				if err := v.Step(st); err != nil {
					return fatal(err)
				}
				steps++
				transfers += len(st.Transfers)
			}
			fmt.Printf("streamed %s N=%d w=%d: %d steps, %d transfers, validated\n",
				src.Algorithm(), ring.N, cfg.w, steps, transfers)
			return 0
		}
		s, err := core.BuildWRHT(wcfg)
		if err != nil {
			return fatal(err)
		}
		if err := s.Validate(cfg.w); err != nil {
			return fatal(err)
		}
		transfers := 0
		for _, st := range s.Steps {
			transfers += len(st.Transfers)
		}
		fmt.Printf("materialized %s N=%d w=%d: %d steps, %d transfers, validated\n",
			s.Algorithm, s.Ring.N, cfg.w, s.NumSteps(), transfers)
		return 0
	}
	if cmd == "table1" || cmd == "all" {
		t, err := exp.Table1()
		if err != nil {
			return fatal(err)
		}
		fmt.Println(t)
		ran = true
	}
	if cmd == "fig4" || cmd == "all" {
		fig, err := exp.Fig4(o)
		if err != nil {
			return fatal(err)
		}
		fmt.Println(fig)
		rec.Record(exp.FigureRun("fig4", fig))
		ran = true
	}
	if cmd == "fig5" || cmd == "all" {
		r, err := exp.Fig5(o)
		if err != nil {
			return fatal(err)
		}
		for i, f := range r.Figures {
			fmt.Println(f)
			rec.Record(exp.FigureRun(fmt.Sprintf("fig5-%d", i), f))
		}
		fmt.Printf("Fig 5 mean reductions (%s): WRHT vs Ring %s (paper 13.74%%), vs H-Ring %s (paper 9.29%%), vs BT %s (paper 75%%)\n\n",
			o.Granularity, metrics.Pct(r.VsRing), metrics.Pct(r.VsHRing), metrics.Pct(r.VsBT))
		ran = true
	}
	if cmd == "fig6" || cmd == "all" {
		r, err := exp.Fig6(o)
		if err != nil {
			return fatal(err)
		}
		for i, f := range r.Figures {
			fmt.Println(f)
			rec.Record(exp.FigureRun(fmt.Sprintf("fig6-%d", i), f))
		}
		fmt.Printf("Fig 6 mean reductions (%s): WRHT vs Ring %s (paper 65.23%%), vs H-Ring %s (paper 43.81%%), vs BT %s (paper 82.22%%)\n\n",
			o.Granularity, metrics.Pct(r.VsRing), metrics.Pct(r.VsHRing), metrics.Pct(r.VsBT))
		ran = true
	}
	if cmd == "fig7" || cmd == "all" {
		r, err := exp.Fig7(o)
		if err != nil {
			return fatal(err)
		}
		for i, f := range r.Figures {
			fmt.Println(f)
			rec.Record(exp.FigureRun(fmt.Sprintf("fig7-%d", i), f))
		}
		fmt.Printf("Fig 7 mean reductions (%s): O-Ring vs E-Ring %s (paper 48.74%%), WRHT vs E-Ring %s (paper 61.23%%), WRHT vs E-RD %s (paper 55.51%%)\n\n",
			o.Granularity, metrics.Pct(r.ORingVsERing), metrics.Pct(r.WRHTVsERing), metrics.Pct(r.WRHTVsERD))
		ran = true
	}
	if cmd == "constraints" || cmd == "all" {
		fmt.Println(exp.Constraints())
		ran = true
	}
	if cmd == "stragglers" || cmd == "all" {
		t, err := exp.Stragglers(o, dnn.ResNet50(), 256, 64, 0.2, 20, 1)
		if err != nil {
			return fatal(err)
		}
		fmt.Println(t)
		ran = true
	}
	if cmd == "extras" || cmd == "all" {
		for _, m := range []dnn.Model{dnn.ResNet50(), dnn.BEiTLarge()} {
			t, err := exp.Extras(o, m, 1024, 64)
			if err != nil {
				fatal(err)
			}
			fmt.Println(t)
		}
		ran = true
	}
	if cmd == "hybrid" || cmd == "all" {
		const nodes = 64
		model := dnn.BEiTLarge()
		t := &metrics.Table{
			Title:   fmt.Sprintf("§6.2 hybrid parallelism: %s on %d nodes (GPipe, 8×2 microbatches)", model.Name, nodes),
			Headers: []string{"P x D", "pipeline (ms)", "bubble (ms)", "all-reduce (ms)", "iteration (ms)"},
		}
		for _, p := range []int{1, 2, 4, 8, 16} {
			sim := parallel.Sim{
				Model:          model,
				Strat:          parallel.Strategy{Stages: p, Replicas: nodes / p},
				Microbatches:   8,
				MicrobatchSize: 2,
				GPU:            workload.TitanXP(),
				Optical:        optical.DefaultParams(),
			}
			res, err := sim.Run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "wrhtsim: hybrid: %v\n", err)
				return 1
			}
			t.AddRow(fmt.Sprintf("%d x %d", p, nodes/p),
				fmt.Sprintf("%.1f", res.PipelineSec*1e3),
				fmt.Sprintf("%.1f", res.BubbleSec*1e3),
				fmt.Sprintf("%.1f", res.AllReduceSec*1e3),
				fmt.Sprintf("%.1f", res.TotalSec*1e3))
		}
		fmt.Println(t)
		ran = true
	}
	if cmd == "crossfabric" || cmd == "all" {
		// One engine, two backends: the -n/-w ring and the same-size
		// fat-tree time identical explicit schedules; -d sets the payload.
		r, err := exp.CrossFabric(o, cfg.n, cfg.w, cfg.payloadMB*1e6)
		if err != nil {
			return fatal(err)
		}
		fmt.Println(r.Table)
		names := make([]string, 0, len(r.Runs))
		for name := range r.Runs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rec.Record(fabric.BreakdownRun("crossfabric/"+name, r.Runs[name]))
		}
		ran = true
	}
	if cmd == "faults" || cmd == "all" {
		// Degraded-mode sweep: completion time versus dead wavelengths,
		// rebuilt-upfront and injected-mid-run (see internal/exp.Degradation).
		ns := []int{64, 1024, 4096}
		if cfg.nSet {
			ns = []int{cfg.n}
		}
		r, err := exp.Degradation(o, ns, cfg.w, cfg.payloadMB*1e6, nil, 1)
		if err != nil {
			return fatal(err)
		}
		fmt.Println(r.Table)
		ran = true
	}
	if cmd == "overlap" || cmd == "all" {
		// IR pass pipeline vs the opportunistic overlap baseline: how
		// many reconfigurations each hides (see DESIGN.md §2.5). The
		// golden pair N ∈ {1024, 4096} unless -n narrows it.
		ns := []int{1024, 4096}
		if cfg.nSet {
			ns = []int{cfg.n}
		}
		d := cfg.payloadMB * 1e6
		passes, err := overlapPasses(cfg.passes, o.Optical, d)
		if err != nil {
			return fatal(err)
		}
		r, err := exp.OverlapSweep(o, ns, cfg.w, d, passes)
		if err != nil {
			return fatal(err)
		}
		fmt.Println(r.Table)
		if cfg.check {
			for _, pt := range r.Points {
				if pt.PassHidden <= pt.BaselineHidden {
					return fatal(fmt.Errorf("overlap check: N=%d w=%d: pass hidden-reconfig count %d not strictly above baseline %d",
						pt.N, pt.W, pt.PassHidden, pt.BaselineHidden))
				}
			}
			fmt.Printf("overlap check passed: hidden reconfigs strictly above baseline at all %d points\n\n", len(r.Points))
		}
		ran = true
	}
	if cmd == "plan" || cmd == "all" {
		// All-to-all planner gate: sweep the (r, w, a) grid (-r, -w, -a;
		// both fabrics), cross-checking the planner's predicted argmin
		// against the simulated one, then the end-to-end rescue of the
		// named fallback configurations. -check makes any gate violation
		// exit nonzero; -json dumps the raw points.
		rs, err := intList(cfg.planR)
		if err != nil {
			return fatal(fmt.Errorf("plan: -r: %w", err))
		}
		as, err := floatList(cfg.planA)
		if err != nil {
			return fatal(fmt.Errorf("plan: -a: %w", err))
		}
		r, err := exp.PlanSweep(o, rs, []int{cfg.w}, as, cfg.payloadMB*1e6)
		if err != nil {
			return fatal(err)
		}
		fmt.Println(r.Table)
		rescue, err := exp.RescueSweep(o, []int{256, 1024}, []int{8, 16}, cfg.payloadMB*1e6)
		if err != nil {
			return fatal(err)
		}
		rt := &metrics.Table{
			Title:   "Planner rescue of fallback configurations (full WRHT, optical, overlap on)",
			Headers: []string{"N", "w", "final r", "req", "steps", "fallback (ms)", "planned (ms)", "speedup"},
		}
		for _, pt := range rescue {
			rt.AddRow(fmt.Sprint(pt.N), fmt.Sprint(pt.W), fmt.Sprint(pt.FinalR), fmt.Sprint(pt.Requirement),
				fmt.Sprintf("%d -> %d", pt.FallbackSteps, pt.PlannedSteps),
				fmt.Sprintf("%.3f", pt.FallbackTime*1e3), fmt.Sprintf("%.3f", pt.PlannedTime*1e3),
				fmt.Sprintf("%.2fx", pt.Speedup))
		}
		fmt.Println(rt)
		if cfg.check {
			for _, pt := range r.Points {
				if err := pt.Check(); err != nil {
					return fatal(fmt.Errorf("plan check (%s, r=%d, w=%d, a=%gus): %w", pt.Fabric, pt.R, pt.W, pt.AMicro, err))
				}
			}
			for _, pt := range rescue {
				if pt.Speedup <= 1 {
					return fatal(fmt.Errorf("plan check: rescue (N=%d, w=%d) speedup %.3f not above 1", pt.N, pt.W, pt.Speedup))
				}
			}
			fmt.Printf("plan check passed: predicted argmin == simulated argmin at all %d points, rescue speedups above 1\n\n", len(r.Points))
		}
		if cfg.jsonOut != "" {
			out := struct {
				Points []exp.PlanPoint   `json:"points"`
				Rescue []exp.RescuePoint `json:"rescue"`
			}{r.Points, rescue}
			f, err := os.Create(cfg.jsonOut)
			if err != nil {
				return fatal(err)
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(out); err != nil {
				f.Close()
				return fatal(err)
			}
			if err := f.Close(); err != nil {
				return fatal(err)
			}
			fmt.Printf("raw plan points written to %s\n", cfg.jsonOut)
			cfg.jsonOut = "" // consumed; skip the figure recorder below
		}
		ran = true
	}
	if cmd == "crossover" || cmd == "all" {
		tp := o.Optical.TimeParams()
		t := &metrics.Table{
			Title:   "Analytic crossover: smallest N where fused WRHT beats optical Ring (w=64)",
			Headers: []string{"Workload", "grad (MB)", "crossover N"},
		}
		for _, m := range dnn.Workloads() {
			n := tp.RingCrossoverN(64, float64(m.GradBytes()), 1<<22)
			t.AddRow(m.Name, fmt.Sprintf("%.1f", float64(m.GradBytes())/1e6), fmt.Sprint(n))
		}
		fmt.Println(t)
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "wrhtsim: unknown command %q\n", cmd)
		flag.Usage()
		return 2
	}
	if cfg.jsonOut != "" && len(rec.Runs) > 0 {
		if err := rec.WriteFile(cfg.jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "wrhtsim: writing %s: %v\n", cfg.jsonOut, err)
			return 1
		}
		fmt.Printf("raw series written to %s\n", cfg.jsonOut)
	}
	if o.Trace != nil {
		if err := o.Trace.WriteFile(cfg.tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "wrhtsim: writing %s: %v\n", cfg.tracePath, err)
			return 1
		}
		fmt.Printf("trace written to %s (open in https://ui.perfetto.dev)\n", cfg.tracePath)
	}
	if o.Metrics != nil {
		if t := latencySummary(o.Metrics); t != nil {
			fmt.Println(t)
		}
	}
	if cfg.metricsPath != "" {
		var err error
		if cfg.metricsFormat == "legacy" {
			err = o.Metrics.WriteFile(cfg.metricsPath)
		} else {
			err = o.Metrics.ExposeFile(cfg.metricsPath)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "wrhtsim: writing %s: %v\n", cfg.metricsPath, err)
			return 1
		}
		if cfg.metricsPath != "-" {
			fmt.Printf("metrics written to %s\n", cfg.metricsPath)
		}
	}
	if cfg.promPath != "" {
		if err := o.Metrics.ExposeFile(cfg.promPath); err != nil {
			fmt.Fprintf(os.Stderr, "wrhtsim: writing %s: %v\n", cfg.promPath, err)
			return 1
		}
		if cfg.promPath != "-" {
			fmt.Printf("prometheus exposition written to %s\n", cfg.promPath)
		}
	}
	return 0
}

// latencySummary renders the wall-clock histograms as a p50/p99/max
// table — the at-a-glance profile every metrics-enabled run prints —
// or nil when no latency was recorded.
func latencySummary(reg *obs.Registry) *metrics.Table {
	t := &metrics.Table{
		Title:   "Wall-clock latency summary (from -metrics/-prom histograms)",
		Headers: []string{"Series", "count", "p50 (µs)", "p99 (µs)", "max (µs)"},
	}
	rows := 0
	for _, f := range reg.Snapshot().Families() {
		if f.Type != "histogram" {
			continue
		}
		for _, se := range f.Series {
			h := se.Hist
			if h == nil || h.Count == 0 {
				continue
			}
			name := f.Raw
			if se.Labels != "" {
				name += "{" + se.Labels + "}"
			}
			t.AddRow(name, fmt.Sprint(h.Count),
				fmt.Sprintf("%.1f", h.Quantile(0.5)*1e6),
				fmt.Sprintf("%.1f", h.Quantile(0.99)*1e6),
				fmt.Sprintf("%.1f", h.Max*1e6))
			rows++
		}
	}
	if rows == 0 {
		return nil
	}
	return t
}
