package cluster_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wrht/internal/cluster"
	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// intInputs builds n vectors of small integer-valued floats so that
// float32 summation is exact and all-reduce results can be compared
// exactly against the float64 ground truth.
func intInputs(rng *rand.Rand, n, l int) []tensor.Vector {
	in := make([]tensor.Vector, n)
	for i := range in {
		in[i] = tensor.New(l)
		for j := range in[i] {
			in[i][j] = float32(rng.Intn(201) - 100)
		}
	}
	return in
}

func runAndVerify(t *testing.T, s *core.Schedule, n, l int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	in := intInputs(rng, n, l)
	want := cluster.ExpectedSum(in)
	c, err := cluster.New(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Execute(s); err != nil {
		t.Fatalf("%s N=%d: %v", s.Algorithm, n, err)
	}
	if err := c.VerifyAllReduced(want, 0); err != nil {
		t.Fatalf("%s N=%d l=%d: %v", s.Algorithm, n, l, err)
	}
}

func TestWRHTAllReduceCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 15, 16, 17, 31, 32, 33, 64, 100, 129, 200} {
		for _, w := range []int{1, 2, 4, 8, 64} {
			s, err := core.BuildWRHT(core.Config{N: n, Wavelengths: w})
			if err != nil {
				t.Fatalf("N=%d w=%d: %v", n, w, err)
			}
			runAndVerify(t, s, n, 50, int64(n*1000+w))
		}
	}
}

func TestWRHTAllReduceNoA2ACorrect(t *testing.T) {
	for _, n := range []int{2, 15, 64, 100} {
		s, err := core.BuildWRHT(core.Config{N: n, Wavelengths: 4, DisableAllToAll: true})
		if err != nil {
			t.Fatal(err)
		}
		runAndVerify(t, s, n, 33, int64(n))
	}
}

func TestWRHTExplicitGroupSizes(t *testing.T) {
	// Fig-4 style group sizes on a smaller ring.
	for _, m := range []int{3, 5, 9, 17, 33} {
		s, err := core.BuildWRHT(core.Config{N: 128, Wavelengths: 64, GroupSize: m})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		runAndVerify(t, s, 128, 40, int64(m))
	}
}

func TestRingAllReduceCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16, 33, 64} {
		runAndVerify(t, collective.BuildRing(n), n, 64, int64(n))
	}
}

func TestRingAllReduceUnevenVector(t *testing.T) {
	// Vector length not divisible by N exercises chunk rounding.
	runAndVerify(t, collective.BuildRing(16), 16, 37, 99)
	runAndVerify(t, collective.BuildRing(7), 7, 5, 98)
}

func TestBTAllReduceCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 15, 16, 17, 31, 32, 100} {
		runAndVerify(t, collective.BuildBT(n), n, 48, int64(n))
	}
}

func TestRDAllReduceCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		s, err := collective.BuildRD(n)
		if err != nil {
			t.Fatal(err)
		}
		runAndVerify(t, s, n, 64, int64(n))
	}
}

func TestRDRejectsNonPow2(t *testing.T) {
	if _, err := collective.BuildRD(12); err == nil {
		t.Fatal("BuildRD(12) should fail")
	}
}

func TestHRingAllReduceCorrect(t *testing.T) {
	cases := []struct{ n, m, w int }{
		{4, 2, 4}, {8, 4, 4}, {12, 3, 4}, {20, 5, 8}, {100, 5, 64},
		{100, 10, 64}, {64, 8, 8}, {30, 5, 2}, // scarce wavelengths
	}
	for _, c := range cases {
		s, err := collective.BuildHRing(c.n, c.m, c.w)
		if err != nil {
			t.Fatalf("n=%d m=%d: %v", c.n, c.m, err)
		}
		// Element count divisible by n avoids the documented band-rounding
		// caveat — use a multiple.
		runAndVerify(t, s, c.n, 3*c.n, int64(c.n*c.m))
	}
}

func TestHRingUnevenVectorStillCorrect(t *testing.T) {
	// Nested chunks keep H-Ring exact even when n does not divide the
	// vector length.
	s, err := collective.BuildHRing(20, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	runAndVerify(t, s, 20, 53, 7)
}

func TestHRingRejectsBadConfig(t *testing.T) {
	if _, err := collective.BuildHRing(10, 3, 4); err == nil {
		t.Fatal("m must divide n")
	}
	if _, err := collective.BuildHRing(10, 1, 4); err == nil {
		t.Fatal("m=1 invalid")
	}
	if _, err := collective.BuildHRing(10, 5, 0); err == nil {
		t.Fatal("w=0 invalid")
	}
}

func TestAllReduceAverage(t *testing.T) {
	in := []tensor.Vector{{2, 4}, {6, 8}}
	c, err := cluster.New(in)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := core.BuildWRHT(core.Config{N: 2, Wavelengths: 1})
	if err := c.AllReduce(s, true); err != nil {
		t.Fatal(err)
	}
	for node := 0; node < 2; node++ {
		v := c.Vector(node)
		if v[0] != 4 || v[1] != 6 {
			t.Fatalf("node %d = %v, want [4 6]", node, v)
		}
	}
}

func TestClusterRejectsMismatchedSchedule(t *testing.T) {
	c, err := cluster.New(intInputs(rand.New(rand.NewSource(1)), 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Execute(collective.BuildRing(8)); err == nil {
		t.Fatal("schedule/cluster size mismatch accepted")
	}
}

func TestClusterRejectsEmptyAndRagged(t *testing.T) {
	if _, err := cluster.New(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := cluster.New([]tensor.Vector{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestQuickWRHTAllReduceProperty(t *testing.T) {
	// Property: for random N, w, vector length, WRHT all-reduce equals
	// the elementwise sum on every node, exactly (integer-valued data).
	f := func(nRaw, wRaw, lRaw uint16, seed int64) bool {
		n := int(nRaw%120) + 1
		w := int(wRaw%16) + 1
		l := int(lRaw%200) + 1
		s, err := core.BuildWRHT(core.Config{N: n, Wavelengths: w})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		in := intInputs(rng, n, l)
		want := cluster.ExpectedSum(in)
		c, err := cluster.New(in)
		if err != nil {
			return false
		}
		if err := c.Execute(s); err != nil {
			return false
		}
		return c.VerifyAllReduced(want, 0) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRingAllReduceProperty(t *testing.T) {
	f := func(nRaw, lRaw uint16, seed int64) bool {
		n := int(nRaw%64) + 1
		l := int(lRaw%300) + 1
		rng := rand.New(rand.NewSource(seed))
		in := intInputs(rng, n, l)
		want := cluster.ExpectedSum(in)
		c, err := cluster.New(in)
		if err != nil {
			return false
		}
		if err := c.Execute(collective.BuildRing(n)); err != nil {
			return false
		}
		return c.VerifyAllReduced(want, 0) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTorusWRHTAllReduceCorrect(t *testing.T) {
	for _, c := range []struct{ r, cl, w int }{{4, 4, 2}, {3, 15, 2}, {8, 8, 4}, {1, 9, 2}, {9, 1, 2}} {
		tor := topo.NewTorus(c.r, c.cl)
		s, err := core.BuildWRHTTorus(tor, c.w, 0)
		if err != nil {
			t.Fatalf("%dx%d: %v", c.r, c.cl, err)
		}
		runAndVerify(t, s, tor.N(), 30, int64(c.r*100+c.cl))
	}
}

func TestMeshWRHTAllReduceCorrect(t *testing.T) {
	for _, c := range []struct{ r, cl, w int }{{4, 4, 2}, {3, 15, 2}, {8, 8, 4}} {
		m := topo.NewMesh(c.r, c.cl)
		s, err := core.BuildWRHTMesh(m, c.w, 0)
		if err != nil {
			t.Fatalf("%dx%d: %v", c.r, c.cl, err)
		}
		runAndVerify(t, s, m.N(), 25, int64(c.r*31+c.cl))
	}
}

func TestLineWRHTAllReduceCorrect(t *testing.T) {
	for _, n := range []int{2, 9, 15, 64, 100} {
		s, err := core.BuildWRHTLine(core.Config{N: n, Wavelengths: 4})
		if err != nil {
			t.Fatal(err)
		}
		runAndVerify(t, s, n, 21, int64(n*7))
	}
}
