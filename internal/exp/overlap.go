package exp

import (
	"fmt"
	"strings"

	"wrht/internal/core"
	"wrht/internal/fabric"
	"wrht/internal/ir"
	"wrht/internal/metrics"
	"wrht/internal/obs"
	"wrht/internal/optical"
)

// OverlapPasses returns the default overlap-maximizing pass pipeline
// for a fabric with p's timing parameters and a dBytes per-node
// payload: dependency-legal reordering, boundary-biased wavelength
// re-assignment, then wavelength-shifted step splitting gated on the
// paper's hiding condition (half a step's serialization must cover the
// 25 µs MRR retune).
func OverlapPasses(p optical.Params, dBytes float64) []ir.Pass {
	return []ir.Pass{
		ir.Reorder{},
		ir.Recolor{},
		&ir.Split{
			SetupSeconds:   p.ReconfigDelay,
			BytesPerSecond: p.BandwidthBps / 8,
			PayloadBytes:   dBytes,
		},
	}
}

// ParsePasses resolves a pass-selection spec (the -passes flag and the
// sweep request's "passes" field): "all" (or empty) selects the default
// pipeline (nil, so OverlapSweep uses OverlapPasses), "none" the
// identity pipeline (an empty non-nil slice — a round-trip control),
// anything else a comma-separated pass subset in the given order.
func ParsePasses(spec string, p optical.Params, dBytes float64) ([]ir.Pass, error) {
	switch spec {
	case "", "all":
		return nil, nil
	case "none":
		return []ir.Pass{}, nil
	}
	var out []ir.Pass
	for _, name := range strings.Split(spec, ",") {
		switch strings.TrimSpace(name) {
		case "reorder":
			out = append(out, ir.Reorder{})
		case "recolor":
			out = append(out, ir.Recolor{})
		case "split":
			out = append(out, &ir.Split{
				SetupSeconds:   p.ReconfigDelay,
				BytesPerSecond: p.BandwidthBps / 8,
				PayloadBytes:   dBytes,
			})
		default:
			return nil, fmt.Errorf("unknown IR pass %q (want reorder, recolor, split, all or none)", name)
		}
	}
	return out, nil
}

// OverlapPoint is one row of the overlap sweep: the opportunistic
// baseline (the engine probing each step boundary itself) versus the
// same schedule rewritten by the IR passes and timed with precomputed
// boundary decisions.
type OverlapPoint struct {
	N, W int
	// Steps and Hidden count schedule steps and step boundaries whose
	// setup was (at least partly) hidden under the previous step's
	// transmission.
	BaselineSteps, PassSteps   int
	BaselineHidden, PassHidden int
	// Saved is the engine's OverlapSaved (seconds of setup removed from
	// the critical path); Time the total communication time.
	BaselineSaved, PassSaved float64
	BaselineTime, PassTime   float64
}

// OverlapSweepResult bundles the rendered table with the raw points.
type OverlapSweepResult struct {
	Table  *metrics.Table
	Points []OverlapPoint
}

// OverlapSweep times WRHT at w wavelengths for every ring size in ns,
// in overlap mode, twice per point: once opportunistically (the
// baseline — the engine probes each boundary) and once after running
// the IR pass pipeline with the passes' boundary decisions supplied to
// the engine up front. A nil passes slice selects OverlapPasses for
// o.Optical; an empty non-nil slice runs the identity pipeline (useful
// as a round-trip control). Options.Trace/Metrics receive per-pass
// spans and counters through obs.IRObserver.
func OverlapSweep(o Options, ns []int, w int, dBytes float64, passes []ir.Pass) (OverlapSweepResult, error) {
	return newEngine(o, "overlap").overlapSweep(ns, w, dBytes, passes)
}

func (e *engine) overlapSweep(ns []int, w int, dBytes float64, passes []ir.Pass) (OverlapSweepResult, error) {
	if e.optFabErr != nil {
		return OverlapSweepResult{}, e.optFabErr
	}
	if passes == nil {
		passes = OverlapPasses(e.opts.Optical, dBytes)
	}
	irObs := obs.NewIRObserver(e.opts.Trace, e.opts.Metrics)
	points, err := sweep(e, len(ns), func(i int) (OverlapPoint, error) {
		n := ns[i]
		s, err := core.BuildWRHT(core.Config{N: n, Wavelengths: w})
		if err != nil {
			return OverlapPoint{}, fmt.Errorf("overlap sweep (N=%d, w=%d): %w", n, w, err)
		}
		base, err := fabric.Engine{Fabric: e.optFab, Opts: fabric.Options{Overlap: true}}.RunSchedule(s, dBytes)
		if err != nil {
			return OverlapPoint{}, fmt.Errorf("overlap baseline (N=%d): %w", n, err)
		}
		p, err := ir.Lower(s, w)
		if err != nil {
			return OverlapPoint{}, fmt.Errorf("overlap lower (N=%d): %w", n, err)
		}
		if err := (ir.Pipeline{Passes: passes, Observer: irObs}).Run(p); err != nil {
			return OverlapPoint{}, fmt.Errorf("overlap passes (N=%d): %w", n, err)
		}
		passed, err := fabric.Engine{
			Fabric: e.optFab,
			Opts:   fabric.Options{Overlap: true, BoundaryDisjoint: p.Boundaries()},
		}.RunSchedule(p.Raise(), dBytes)
		if err != nil {
			return OverlapPoint{}, fmt.Errorf("overlap pass run (N=%d): %w", n, err)
		}
		return OverlapPoint{
			N: n, W: w,
			BaselineSteps: base.Steps, PassSteps: passed.Steps,
			BaselineHidden: hiddenCount(base), PassHidden: hiddenCount(passed),
			BaselineSaved: base.OverlapSaved, PassSaved: passed.OverlapSaved,
			BaselineTime: base.Time, PassTime: passed.Time,
		}, nil
	})
	if err != nil {
		return OverlapSweepResult{}, err
	}
	t := &metrics.Table{
		Title: fmt.Sprintf("IR overlap sweep: WRHT, w=%d, %.0f MB payload (baseline -> passes)",
			w, dBytes/1e6),
		Headers: []string{"N", "steps", "hidden reconfigs", "setup hidden (us)", "time (ms)"},
	}
	for _, pt := range points {
		t.AddRow(fmt.Sprint(pt.N),
			fmt.Sprintf("%d -> %d", pt.BaselineSteps, pt.PassSteps),
			fmt.Sprintf("%d -> %d", pt.BaselineHidden, pt.PassHidden),
			fmt.Sprintf("%.1f -> %.1f", pt.BaselineSaved*1e6, pt.PassSaved*1e6),
			fmt.Sprintf("%.3f -> %.3f", pt.BaselineTime*1e3, pt.PassTime*1e3))
	}
	return OverlapSweepResult{Table: t, Points: points}, nil
}

// hiddenCount counts the steps whose circuit setup was hidden (at
// least partly) under the previous step's transmission.
func hiddenCount(r fabric.Result) int {
	n := 0
	for _, sr := range r.PerStep {
		if sr.Overlapped > 0 {
			n++
		}
	}
	return n
}
