package obs

// KernelObserver implements des.Hook, counting every event and marking
// labeled ones on a Perfetto track. Unlabeled events (the electrical
// fluid solver schedules thousands per run) only bump counters; labeled
// events — the optical DES's "reconfig"/"transfer" completions, the
// training timeline's phase boundaries — also emit an instant marker at
// their simulated firing time, so kernel-driven simulators line up on
// the same timeline as the fabric engine's spans.
//
// Counter handles are resolved once at construction (nil-safe on a nil
// registry), so the per-event cost is two atomic increments.
type KernelObserver struct {
	Tracer *Tracer
	// Track receives the instant markers for labeled events.
	Track Track

	scheduled *Counter
	fired     *Counter
}

// NewKernelObserver returns a hook emitting into tr and reg (either may
// be nil) on the given track.
func NewKernelObserver(tr *Tracer, reg *Registry, track Track) *KernelObserver {
	return &KernelObserver{
		Tracer:    tr,
		Track:     track,
		scheduled: reg.Counter("des.events.scheduled"),
		fired:     reg.Counter("des.events.fired"),
	}
}

// EventScheduled implements des.Hook.
func (o *KernelObserver) EventScheduled(seq uint64, at, now float64, label string) {
	o.scheduled.Inc()
}

// EventFired implements des.Hook.
func (o *KernelObserver) EventFired(seq uint64, now float64, label string) {
	o.fired.Inc()
	if label != "" && o.Tracer != nil {
		o.Tracer.Instant(o.Track, label, now, nil)
	}
}
