package obs

import (
	"math"
	"sync/atomic"
)

// Histogram bucket layout. The layout is fixed at compile time so every
// histogram in every process exposes the identical bucket boundaries —
// a scrape aggregator (cmd/wrhtd, Prometheus itself) can sum series
// without bound reconciliation. Buckets are logarithmic: histSub
// linearly-spaced sub-buckets per power of two between 2^histMinExp
// and 2^histMaxExp seconds, so any observation lands in a bucket whose
// bounds are within a factor of at most 1+1/histSub = 1.25 of each
// other — quantile estimates carry at most ~25% relative error, which
// is plenty for wall-clock latency percentiles. The range covers ~0.93 ns to ~1024 s; anything
// below lands in the underflow bucket (le = 2^histMinExp) and anything
// at or above in the overflow bucket (le = +Inf).
const (
	histMinExp  = -30 // lowest octave: 2^-30 s ≈ 0.93 ns
	histMaxExp  = 10  // one past the highest octave: 2^10 s = 1024 s
	histSubBits = 2
	histSub     = 1 << histSubBits // sub-buckets per octave
	// histBuckets counts the regular (finite-bound) buckets, underflow
	// included; the overflow (+Inf) bucket is stored separately at index
	// histBuckets.
	histBuckets = (histMaxExp-histMinExp)*histSub + 1
)

// Histogram is a lock-free latency histogram with a fixed logarithmic
// bucket layout (see the layout constants above). Like Counter and
// Gauge, every method is safe on a nil receiver — a nil histogram
// observes nothing and reports zeros — so producers can hold handles
// from a nil Registry without branching, and Observe on a live
// histogram performs no allocations and takes no locks (pinned by
// TestHistogramObserveZeroAllocs and exercised under the race detector
// by TestHistogramConcurrentObserveSnapshot).
type Histogram struct {
	// counts[i] is the number of observations in bucket i (plain
	// per-bucket counts, not cumulative); counts[histBuckets] is the
	// overflow bucket.
	counts [histBuckets + 1]atomic.Uint64
	// sumBits and maxBits hold float64 bit patterns maintained with CAS
	// loops (the same idiom as Gauge).
	sumBits atomic.Uint64
	maxBits atomic.Uint64
	count   atomic.Uint64
}

// histBucketOf maps an observation to its bucket index. Non-positive
// and sub-range values land in the underflow bucket 0; values at or
// beyond 2^histMaxExp land in the overflow bucket.
func histBucketOf(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) {
		return histBuckets
	}
	frac, exp := math.Frexp(v) // v = frac·2^exp, frac ∈ [0.5, 1)
	octave := exp - 1          // v ∈ [2^octave, 2^octave+1)
	if octave < histMinExp {
		return 0
	}
	if octave >= histMaxExp {
		return histBuckets
	}
	sub := int((frac - 0.5) * (2 * histSub)) // ∈ [0, histSub)
	return 1 + (octave-histMinExp)*histSub + sub
}

// HistBucketBound returns the inclusive upper bound (Prometheus "le")
// of bucket i; the overflow bucket's bound is +Inf. Exported so tests
// and scrape consumers can reconstruct the fixed layout.
func HistBucketBound(i int) float64 {
	if i <= 0 {
		return math.Ldexp(1, histMinExp)
	}
	if i >= histBuckets {
		return math.Inf(1)
	}
	octave := (i-1)/histSub + histMinExp
	sub := (i - 1) % histSub
	return math.Ldexp(1+float64(sub+1)/histSub, octave)
}

// Observe records one value. It is lock-free and allocation-free: one
// bucket increment, one count increment and two CAS loops (sum, max).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[histBucketOf(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Max returns the largest observed value (0 before any observation).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts:
// the upper bound of the first bucket whose cumulative count reaches
// q·Count, clamped to the exact observed maximum so the estimate never
// exceeds a value that was actually recorded. Returns 0 on an empty
// histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// Snapshot copies the histogram's current state (see
// HistogramSnapshot). Each bucket word is read atomically; observations
// racing the copy land wholly in this snapshot or the next.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return h.snapshot(false)
}

func (h *Histogram) snapshot(reset bool) HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	load := func(a *atomic.Uint64) uint64 {
		if reset {
			return a.Swap(0)
		}
		return a.Load()
	}
	for i := range h.counts {
		if c := load(&h.counts[i]); c > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{
				Index: i, UpperBound: HistBucketBound(i), Count: c,
			})
		}
	}
	s.Count = load(&h.count)
	s.Sum = math.Float64frombits(load(&h.sumBits))
	s.Max = math.Float64frombits(load(&h.maxBits))
	return s
}

// HistogramBucket is one non-empty bucket of a snapshot. Count is the
// bucket's own count (Expose accumulates the Prometheus cumulative
// form).
type HistogramBucket struct {
	// Index is the bucket's position in the fixed layout.
	Index int `json:"index"`
	// UpperBound is the bucket's inclusive upper bound in seconds
	// (+Inf for the overflow bucket).
	UpperBound float64 `json:"le"`
	// Count is the number of observations in this bucket alone.
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram: the
// non-empty buckets in layout (= bound) order plus the running
// aggregates. It is immutable by construction — it shares no memory
// with the live histogram.
type HistogramSnapshot struct {
	Buckets []HistogramBucket `json:"buckets,omitempty"`
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Max     float64           `json:"max"`
}

// Quantile estimates the q-quantile from the snapshot's buckets; see
// Histogram.Quantile.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= target {
			return math.Min(b.UpperBound, s.Max)
		}
	}
	return s.Max
}
